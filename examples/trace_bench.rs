//! Tracer overhead harness + telemetry showcase: proves the always-on flight
//! recorder is cheap enough to leave enabled, and emits the observability
//! artifacts (`BENCH_trace.json`, a Chrome `trace_event` file, flamegraph-folded
//! text, and the unified Prometheus-style telemetry page).
//!
//! Two parts:
//!
//! * **Overhead** — two measurements of the same question, because they fail in
//!   different ways. (1) *End-to-end*: the identical closed-loop dispatch
//!   workload replayed through two services that differ only in whether a
//!   [`Tracer`] is attached (default config: 1% tail keep, per-worker rings).
//!   Each round runs both arms back-to-back (alternating which goes first, so
//!   within-round drift cancels), and the score is the median of the per-round
//!   on/off ratios. On a shared machine this wall-clock comparison carries
//!   ±10–15% scheduler noise per pair — it cannot *resolve* a 3% budget, so at
//!   full scale it is sanity-gated loosely (<20%, catching only catastrophic
//!   regressions) and reported for the record. (2) *Modeled from per-op costs*:
//!   a tight-loop microbench times every operation the tracer adds to a
//!   request's path — one mint + tail-sampled finish, and one ring record per
//!   span — with nanosecond-scale variance. Multiplying by the measured
//!   spans-per-request from arm (1) and dividing by the untraced arm's median
//!   per-request wall time bounds the true overhead fraction. **The 3%
//!   acceptance gate at full scale is enforced on this modeled overhead**,
//!   which the same noise cannot flake. The smoke run (`TAXI_TRACE_SMOKE=1`,
//!   CI) is too short to time meaningfully, so it only reports numbers and
//!   enforces sanity (tracing still solves everything).
//! * **Exports** — a traced 2-shard fleet (keep-everything sampling) serves a
//!   small stream, then dumps `TRACE_chrome.json` (load in `chrome://tracing` or
//!   Perfetto), `TRACE_folded.txt` (feed to `flamegraph.pl`/inferno), and the
//!   `Telemetry::render()` page on stdout — every snapshot counter in one
//!   scrapeable text page.
//!
//! Run with `cargo run --release --example trace_bench`; set `TAXI_TRACE_SMOKE=1`
//! for the fast CI smoke scale.

use std::sync::Arc;
use std::time::{Duration, Instant};

use taxi_bench::json::{JsonArray, JsonObject};
use taxi_dispatch::{DispatchConfig, DispatchRequest, DispatchService, Ticket};
use taxi_fleet::{Fleet, FleetConfig};
use taxi_trace::{export, AttrKey, RequestFacts, SpanName, TraceConfig, Tracer};
use taxi_tsplib::generator::clustered_instance;
use taxi_tsplib::TspInstance;

struct Scale {
    smoke: bool,
    workers: usize,
    requests: usize,
    repeats: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_TRACE_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                workers: 2,
                requests: 120,
                repeats: 2,
            }
        } else {
            Self {
                smoke,
                workers: 2,
                requests: 900,
                repeats: 8,
            }
        }
    }
}

fn instances(scale: &Scale) -> Vec<TspInstance> {
    (0..scale.requests)
        .map(|i| clustered_instance("ovh", 40, 3, i as u64))
        .collect()
}

/// One closed-loop replay: windows of 32 in flight, every ticket awaited.
/// Returns the wall time of the replay and the service snapshot.
fn replay(service: &DispatchService, instances: &[TspInstance]) -> Duration {
    let started = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(32);
    for chunk in instances.chunks(32) {
        for instance in chunk {
            tickets.push(
                service
                    .submit(DispatchRequest::new(instance.clone()))
                    .expect("admitted"),
            );
        }
        for ticket in tickets.drain(..) {
            assert!(ticket.wait().solved().is_some(), "replay solve");
        }
    }
    started.elapsed()
}

/// Runs one repeat of an arm (a fresh service each time, so no warmth carries
/// over between repeats or arms) and returns its wall time.
fn one_repeat(scale: &Scale, instances: &[TspInstance], tracer: Option<&Arc<Tracer>>) -> Duration {
    let mut config = DispatchConfig::new().with_workers(scale.workers);
    if let Some(tracer) = tracer {
        config = config.with_tracer(Arc::clone(tracer));
    }
    let service = DispatchService::start(config);
    let elapsed = replay(&service, instances);
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed as usize, instances.len());
    elapsed
}

/// Tight-loop timing of the operations a [`Tracer`] adds to a request's path:
/// one mint + tail-sampled finish (root span on keep), and one ring record per
/// span. Returns `(mint_finish_ns, record_ns)` per operation.
fn tracer_op_costs() -> (f64, f64) {
    const OPS: u32 = 200_000;
    let probe = Tracer::new(TraceConfig::new());
    let sink = probe.register("probe");
    let anchor = Instant::now();
    let span_len = Duration::from_micros(250);

    let trace = probe.mint();
    let started = Instant::now();
    for _ in 0..OPS {
        sink.record(trace, SpanName::Solve, anchor, span_len, &[]);
    }
    let record_ns = started.elapsed().as_nanos() as f64 / f64::from(OPS);

    let facts = RequestFacts::completed(span_len);
    let site = [(AttrKey::Shard, 0), (AttrKey::Generation, 1)];
    let started = Instant::now();
    for _ in 0..OPS {
        let trace = probe.mint();
        probe.finish(trace, anchor, &facts, &site);
    }
    let mint_finish_ns = started.elapsed().as_nanos() as f64 / f64::from(OPS);
    (mint_finish_ns, record_ns)
}

/// Median of a non-empty sample (mean of the middle two for even counts).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The export showcase: a keep-everything traced fleet serving a short stream.
fn export_artifacts(scale: &Scale) -> (Arc<Tracer>, String) {
    let tracer = Arc::new(Tracer::new(TraceConfig::new().with_keep_probability(1.0)));
    let fleet = Fleet::start(
        FleetConfig::new()
            .with_shards(2)
            .with_shard_config(DispatchConfig::new().with_workers(1))
            .with_tracer(Arc::clone(&tracer)),
    );
    let showcase = if scale.smoke { 16 } else { 48 };
    let tickets: Vec<_> = (0..showcase)
        .map(|i| {
            fleet
                .submit(DispatchRequest::new(clustered_instance("show", 36, 3, i)))
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().solved().expect("solved");
    }
    let page = fleet.telemetry().render();
    fleet.shutdown();
    (tracer, page)
}

fn main() {
    let scale = Scale::detect();
    println!(
        "tracer overhead harness ({} scale: {} workers, {} requests x {} interleaved repeats)",
        if scale.smoke { "smoke" } else { "full" },
        scale.workers,
        scale.requests,
        scale.repeats,
    );

    // Paired rounds over the identical instance stream, alternating which arm
    // runs first so any systematic within-round drift cancels across rounds.
    let pool = instances(&scale);
    let tracer = Arc::new(Tracer::new(TraceConfig::new()));
    let mut off: Vec<Duration> = Vec::with_capacity(scale.repeats);
    let mut on: Vec<Duration> = Vec::with_capacity(scale.repeats);
    for round in 0..scale.repeats {
        if round % 2 == 0 {
            off.push(one_repeat(&scale, &pool, None));
            on.push(one_repeat(&scale, &pool, Some(&tracer)));
        } else {
            on.push(one_repeat(&scale, &pool, Some(&tracer)));
            off.push(one_repeat(&scale, &pool, None));
        }
    }
    // Each interleaved round is a matched pair; the median paired ratio is the
    // score (see the module docs for why minima are not robust here).
    let ratios: Vec<f64> = off
        .iter()
        .zip(&on)
        .map(|(o, t)| t.as_secs_f64() / o.as_secs_f64())
        .collect();
    let overhead = median(&ratios) - 1.0;
    let stats = tracer.stats();
    println!(
        "  tracing off: {:?}",
        off.iter().map(Duration::as_secs_f64).collect::<Vec<_>>(),
    );
    println!(
        "  tracing on:  {:?}",
        on.iter().map(Duration::as_secs_f64).collect::<Vec<_>>(),
    );
    println!("  paired on/off ratios: {ratios:?}");
    println!(
        "  end-to-end overhead {:+.2}% (median paired; wall-clock, noise-limited)  \
         (traces {} minted, {} kept, {} dropped, {} spans recorded)",
        overhead * 100.0,
        stats.minted,
        stats.kept,
        stats.dropped,
        stats.recorded_spans,
    );

    // The acceptance gate: modeled overhead from directly measured per-op
    // costs (nanosecond-scale variance) against the untraced arm's median
    // per-request wall time. Conservative: the tracer's cost is charged
    // against wall time even though the workload spreads it over all workers.
    let (mint_finish_ns, record_ns) = tracer_op_costs();
    let spans_per_request = stats.recorded_spans as f64 / stats.minted as f64;
    let per_request_ns = mint_finish_ns + spans_per_request * record_ns;
    let off_secs: Vec<f64> = off.iter().map(Duration::as_secs_f64).collect();
    let modeled = (scale.requests as f64 * per_request_ns * 1e-9) / median(&off_secs);
    println!(
        "  per-op costs: mint+finish {mint_finish_ns:.1}ns, record {record_ns:.1}ns, \
         {spans_per_request:.1} spans/request => modeled overhead {:+.4}%",
        modeled * 100.0,
    );
    assert_eq!(
        stats.minted as usize,
        scale.requests * scale.repeats,
        "every traced request minted a trace"
    );
    if !scale.smoke {
        assert!(
            modeled < 0.03,
            "acceptance: modeled tracer overhead must stay under 3% (measured {:+.4}%)",
            modeled * 100.0,
        );
        assert!(
            overhead < 0.20,
            "sanity: end-to-end overhead {:+.2}% exceeds what wall-clock noise explains",
            overhead * 100.0,
        );
    }

    // Exports: Chrome trace, folded stacks, and the unified telemetry page.
    let (show_tracer, telemetry_page) = export_artifacts(&scale);
    let chrome = export::chrome_trace(&show_tracer);
    let chrome_path = taxi_bench::artifact_path("TRACE_chrome.json");
    std::fs::write(&chrome_path, &chrome).expect("write TRACE_chrome.json");
    let folded = export::folded(&show_tracer);
    let folded_path = taxi_bench::artifact_path("TRACE_folded.txt");
    std::fs::write(&folded_path, &folded).expect("write TRACE_folded.txt");
    println!(
        "wrote {} ({} bytes) and {} ({} stacks)",
        chrome_path.display(),
        chrome.len(),
        folded_path.display(),
        folded.lines().count(),
    );
    println!("--- telemetry page ---");
    print!("{telemetry_page}");
    println!("--- end telemetry page ---");

    let times = |durations: &[Duration]| {
        let mut array = JsonArray::new();
        for duration in durations {
            array = array.push(taxi_bench::json::JsonValue::Float {
                value: duration.as_secs_f64(),
                decimals: 6,
            });
        }
        array
    };
    let artifact = JsonObject::new()
        .str("bench", "trace")
        .bool("smoke", scale.smoke)
        .uint("workers", scale.workers as u64)
        .uint("requests_per_repeat", scale.requests as u64)
        .uint("repeats", scale.repeats as u64)
        .object(
            "overhead",
            JsonObject::new()
                .array("off_secs", times(&off))
                .array("on_secs", times(&on))
                .num("median_paired_ratio", overhead + 1.0, 6)
                .num("end_to_end_overhead_pct", overhead * 100.0, 3)
                .num("mint_finish_ns", mint_finish_ns, 1)
                .num("record_ns", record_ns, 1)
                .num("spans_per_request", spans_per_request, 2)
                .num("modeled_overhead_pct", modeled * 100.0, 4)
                .bool("gate_under_3pct", modeled < 0.03)
                .bool("gate_enforced", !scale.smoke),
        )
        .object(
            "tracer",
            JsonObject::new()
                .uint("minted", stats.minted)
                .uint("kept", stats.kept)
                .uint("dropped", stats.dropped)
                .uint("recorded_spans", stats.recorded_spans)
                .uint("rings", stats.rings)
                .uint("ring_capacity", stats.ring_capacity),
        )
        .object(
            "artifacts",
            JsonObject::new()
                .str("chrome_trace", &chrome_path.display().to_string())
                .str("folded_stacks", &folded_path.display().to_string())
                .uint("chrome_bytes", chrome.len() as u64)
                .uint("folded_stacks_count", folded.lines().count() as u64)
                .uint(
                    "telemetry_page_lines",
                    telemetry_page.lines().count() as u64,
                ),
        );
    let path = taxi_bench::artifact_path("BENCH_trace.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_trace.json");
    println!("wrote {}", path.display());
}
