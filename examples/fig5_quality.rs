//! Regenerates the solution-quality figures of the paper (Fig. 5a, 5b and 5c).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fig5_quality                 # all three figures, quick scale
//! cargo run --release --example fig5_quality -- --figure 5a  # one figure only
//! TAXI_FULL_SCALE=1 cargo run --release --example fig5_quality   # the full 20-instance suite
//! ```

use taxi::experiments::fig5::{run_fig5a, run_fig5b, run_fig5c};
use taxi::{ExperimentScale, TaxiError};

fn main() -> Result<(), TaxiError> {
    let figure = std::env::args()
        .skip_while(|a| a != "--figure")
        .nth(1)
        .unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env();
    println!(
        "running Fig 5 experiments at {} scale (set TAXI_FULL_SCALE=1 for the full suite)\n",
        if scale == ExperimentScale::full() {
            "full"
        } else {
            "quick"
        }
    );

    if figure == "5a" || figure == "all" {
        let report = run_fig5a(scale, &[12, 14, 16, 18, 20])?;
        println!("{report}");
        println!("mean optimal ratio per maximum cluster size:");
        for (size, mean) in report.mean_ratio_by_cluster_size() {
            println!("  cluster size {size:>2}: {mean:.4}");
        }
        println!();
    }
    if figure == "5b" || figure == "all" {
        let report = run_fig5b(scale)?;
        println!("{report}");
    }
    if figure == "5c" || figure == "all" {
        let report = run_fig5c(scale)?;
        println!("{report}");
        println!(
            "TAXI (measured) beats the HVC-style baseline on {}/{} instances",
            report.wins_over_hvc_baseline(),
            report.rows.len()
        );
    }
    Ok(())
}
