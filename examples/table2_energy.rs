//! Regenerates Table II: energy comparison with the published state of the art.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example table2_energy
//! TAXI_FULL_SCALE=1 cargo run --release --example table2_energy   # measure up to pla85900
//! ```

use taxi::experiments::tables::run_table2;
use taxi::{ExperimentScale, TaxiError};

fn main() -> Result<(), TaxiError> {
    let scale = ExperimentScale::from_env();
    let report = run_table2(scale)?;
    println!("{report}");
    println!("Published rows are quoted from the paper; measured rows are produced by this");
    println!("reproduction's architecture model at 2-bit precision, cluster size 12.");
    Ok(())
}
