//! Adaptive-router load harness: adaptive routing vs. every fixed backend on one
//! mixed-size Zipf workload, emitting `BENCH_router.json` (a CI artifact alongside
//! `BENCH_dispatch.json` / `BENCH_cache.json`).
//!
//! The workload is deliberately **bimodal-hostile to any single backend**: a
//! popular-routes pool of PCB-drilling geometries (the family with the widest
//! heuristic-vs-exact quality gap) with Zipf popularity, sizes blending small
//! (≤ 14 cities), medium (52–64) and large (130–170) instances, half the traffic
//! interactive with a 3 ms latency budget. On this mix
//!
//! * `exact-dp` has the best tours but blows the budget on large instances,
//! * `nn-2opt`/`greedy-edge` always meet the budget but pay a quality tax,
//! * `ising-macro` (the paper's hardware model) is the slowest arm, and
//! * the **adaptive** arm routes per instance from online profiles — exact where it
//!   fits the budget, heuristics where it does not.
//!
//! Reported per arm: p99 end-to-end latency, deadline-miss rate, mean tour-quality
//! ratio (cost / best-known offline cost of that route). The harness asserts the
//! adaptive arm beats **every** fixed backend on at least one of those axes and
//! spot-checks that routed responses are bit-identical to offline solves with the
//! chosen backend.
//!
//! Run with `cargo run --release --example router_bench`; set `TAXI_ROUTER_SMOKE=1`
//! (CI) for a fast smoke-scale run.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use taxi::router::{AdaptiveRouter, RouterConfig};
use taxi::{BackendChoice, SolverBackend, TaxiConfig, TaxiSolver};
use taxi_bench::json::{JsonArray, JsonObject};
use taxi_dispatch::{
    AdmissionPolicy, BatchPolicy, DispatchConfig, DispatchService, Scenario, ServiceSnapshot,
    SizeMix, Ticket, Workload, WorkloadConfig, WorkloadEvent,
};

const DEADLINE: Duration = Duration::from_millis(3);
const ROUTES: usize = 24;
const ZIPF_EXPONENT: f64 = 1.0;

struct Scale {
    smoke: bool,
    workers: usize,
    requests: usize,
    warmup: usize,
    /// Requests in flight per replay window: small enough that queue wait stays a
    /// fraction of the deadline (no head-of-line amplification of one slow solve).
    window: usize,
    identity_checks: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_ROUTER_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                workers: 2,
                requests: 160,
                warmup: 64,
                window: 4,
                identity_checks: 6,
            }
        } else {
            Self {
                smoke,
                workers: 4,
                requests: 640,
                warmup: 96,
                window: 8,
                identity_checks: 16,
            }
        }
    }
}

/// Size classes aligned with the profiler's power-of-two buckets (≤ 16, 33–64,
/// 129–256) so one class never straddles two profile cells; the medium class sits
/// at the top of its bucket, where the heuristics' quality tax is largest.
fn size_mix() -> SizeMix {
    SizeMix::new((10, 14), (52, 64), (130, 170)).with_weights([0.40, 0.45, 0.15])
}

fn events_for(requests: usize, seed: u64) -> Vec<WorkloadEvent> {
    Workload::generate(
        WorkloadConfig::new(Scenario::PcbDrilling)
            .with_requests(requests)
            .with_size_mix(size_mix())
            .with_popular_routes(ROUTES, ZIPF_EXPONENT)
            .with_interactive_fraction(0.5)
            .with_interactive_deadline(Some(DEADLINE))
            .with_seed(seed),
    )
    .into_events()
}

fn base_solver() -> TaxiConfig {
    TaxiConfig::new().with_seed(37)
}

/// Best-known offline cost per distinct route (minimum over all four fixed
/// backends under the serving configuration) — the quality reference every arm's
/// tours are scored against.
fn reference_costs(events: &[WorkloadEvent]) -> HashMap<String, f64> {
    let mut refs: HashMap<String, f64> = HashMap::new();
    let solvers: Vec<TaxiSolver> = SolverBackend::ALL
        .iter()
        .map(|&b| TaxiSolver::new(base_solver().with_threads(1).with_backend(b)))
        .collect();
    for event in events {
        let name = event.request.instance.name().to_string();
        if refs.contains_key(&name) {
            continue;
        }
        let best = solvers
            .iter()
            .map(|solver| {
                solver
                    .solve(&event.request.instance)
                    .expect("reference solve")
                    .length
            })
            .fold(f64::INFINITY, f64::min);
        refs.insert(name, best);
    }
    refs
}

struct Arm {
    name: &'static str,
    completed: u64,
    p99: Duration,
    mean: Duration,
    miss_rate: f64,
    mean_quality: f64,
    exploration_share: f64,
    /// Scored (count, quality-ratio sum, miss count) per routed backend — empty
    /// for fixed arms; diagnostic of where an adaptive arm spends its traffic.
    routed_breakdown: HashMap<&'static str, (u64, f64, u64)>,
    snapshot: ServiceSnapshot,
}

/// Replays the workload through one service arm in bounded windows and scores it.
///
/// Every arm first replays the same **unscored warm-up** stream: it warms solver
/// scratch for all arms alike, and for the adaptive arm it also fills the profiler
/// cells, so the scored phase measures the router's steady state rather than its
/// cold-start sweep (the sweep itself is exercised and asserted in the test
/// suites).
fn run_arm(
    scale: &Scale,
    name: &'static str,
    solver: TaxiConfig,
    router: Option<Arc<AdaptiveRouter>>,
    warmup: &[WorkloadEvent],
    events: &[WorkloadEvent],
    refs: &HashMap<String, f64>,
) -> Arm {
    let mut config = DispatchConfig::new()
        .with_solver(solver)
        .with_workers(scale.workers)
        .with_queue_capacity(scale.window.max(8))
        .with_admission(AdmissionPolicy::Block)
        .with_batch(
            BatchPolicy::new()
                .with_max_batch(4)
                .with_linger(Duration::from_micros(100)),
        );
    if let Some(router) = router {
        config = config.with_router(router);
    }
    let service = DispatchService::start(config);
    let mut warmup_tickets: Vec<Ticket> = Vec::with_capacity(scale.window);
    for chunk in warmup.chunks(scale.window) {
        for event in chunk {
            warmup_tickets.push(service.submit(event.request.clone()).expect("admitted"));
        }
        for ticket in warmup_tickets.drain(..) {
            let _ = ticket.wait();
        }
    }
    let warmed_up = service.snapshot();
    let mut misses = 0u64;
    let mut quality_sum = 0.0;
    let mut quality_n = 0u64;
    let mut routed_breakdown: HashMap<&'static str, (u64, f64, u64)> = HashMap::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(events.len());
    let mut identity_failures = 0usize;
    let mut identity_checked = 0usize;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(scale.window);
    for chunk in events.chunks(scale.window) {
        for event in chunk {
            tickets.push(service.submit(event.request.clone()).expect("admitted"));
        }
        for (event, ticket) in chunk.iter().zip(tickets.drain(..)) {
            let response = ticket.wait().solved().expect("solved");
            latencies.push(response.end_to_end);
            if response.missed_deadline {
                misses += 1;
            }
            let reference = refs[event.request.instance.name()];
            if reference > 0.0 {
                let ratio = (response.solution.length / reference).max(1.0);
                quality_sum += ratio;
                quality_n += 1;
                if let Some(backend) = response.routed {
                    let slot = routed_breakdown
                        .entry(backend.label())
                        .or_insert((0, 0.0, 0));
                    slot.0 += 1;
                    slot.1 += ratio;
                    slot.2 += u64::from(response.missed_deadline);
                }
            }
            // Spot-check the routed-solve contract: a routed response is
            // bit-identical to an offline solve with the chosen backend.
            if let Some(backend) = response.routed {
                if identity_checked < scale.identity_checks && !response.cache_hit {
                    identity_checked += 1;
                    let offline =
                        TaxiSolver::new(base_solver().with_threads(1).with_backend(backend))
                            .solve(&event.request.instance)
                            .expect("offline identity solve");
                    if offline.tour != response.solution.tour
                        || offline.length != response.solution.length
                    {
                        identity_failures += 1;
                    }
                }
            }
        }
    }
    assert_eq!(
        identity_failures, 0,
        "{identity_checked} routed responses checked, {identity_failures} differed from \
         direct backend invocation"
    );
    let snapshot = service.shutdown();
    // Score only the measured phase: latency quantiles from the scored responses
    // themselves, exploration share from the snapshot delta across the phase
    // boundary. (The embedded raw snapshot still covers warm-up + scored.)
    latencies.sort_unstable();
    let p99 =
        latencies[((latencies.len() as f64 * 0.99).ceil() as usize - 1).min(latencies.len() - 1)];
    let mean = latencies.iter().sum::<Duration>() / latencies.len() as u32;
    let scored = latencies.len() as u64;
    let routed_delta = snapshot.routed_total() - warmed_up.routed_total();
    let explored_delta = snapshot.explored - warmed_up.explored;
    Arm {
        name,
        completed: scored,
        p99,
        mean,
        miss_rate: misses as f64 / scored.max(1) as f64,
        mean_quality: if quality_n == 0 {
            0.0
        } else {
            quality_sum / quality_n as f64
        },
        exploration_share: if routed_delta == 0 {
            0.0
        } else {
            explored_delta as f64 / routed_delta as f64
        },
        routed_breakdown,
        snapshot,
    }
}

/// The axes (of p99 latency / deadline-miss rate / mean quality ratio) on which
/// `adaptive` strictly beats `fixed`.
fn winning_axes(adaptive: &Arm, fixed: &Arm) -> Vec<&'static str> {
    let mut axes = Vec::new();
    if adaptive.p99 < fixed.p99 {
        axes.push("p99_latency");
    }
    if adaptive.miss_rate < fixed.miss_rate {
        axes.push("deadline_miss_rate");
    }
    if adaptive.mean_quality < fixed.mean_quality {
        axes.push("mean_quality");
    }
    axes
}

fn main() {
    let scale = Scale::detect();
    println!(
        "router load harness ({} scale: {} workers, {} requests, {} routes, deadline {:?})",
        if scale.smoke { "smoke" } else { "full" },
        scale.workers,
        scale.requests,
        ROUTES,
        DEADLINE,
    );
    // Warm-up replays a prefix-like stream over the *same* route pool (same
    // workload seed → same pool), so the adaptive arm's per-geometry knowledge
    // carries into the scored phase exactly as it would for a long-lived service.
    let warmup = events_for(scale.warmup, 61);
    let events = events_for(scale.requests, 61);
    let refs = reference_costs(&events);
    println!("  {} distinct routes referenced", refs.len());

    let adaptive_router = Arc::new(AdaptiveRouter::new(
        RouterConfig::new()
            .with_seed(41)
            .with_epsilon(0.02)
            .with_min_samples(2)
            .with_exploration_regret(0.02),
    ));
    let adaptive = run_arm(
        &scale,
        "adaptive",
        base_solver().with_backend_choice(BackendChoice::Adaptive),
        Some(Arc::clone(&adaptive_router)),
        &warmup,
        &events,
        &refs,
    );
    let fixed: Vec<Arm> = SolverBackend::ALL
        .into_iter()
        .map(|backend| {
            run_arm(
                &scale,
                backend.label(),
                base_solver().with_backend(backend),
                None,
                &warmup,
                &events,
                &refs,
            )
        })
        .collect();

    let print_arm = |arm: &Arm| {
        println!(
            "  {:<12} p99 {:8.2}ms  mean {:7.2}ms  miss {:5.1}%  quality {:.4}{}",
            arm.name,
            arm.p99.as_secs_f64() * 1e3,
            arm.mean.as_secs_f64() * 1e3,
            arm.miss_rate * 100.0,
            arm.mean_quality,
            if arm.exploration_share > 0.0 {
                format!("  ({:.1}% explored)", arm.exploration_share * 100.0)
            } else {
                String::new()
            },
        );
    };
    print_arm(&adaptive);
    for (backend, (count, ratio_sum, missed)) in &adaptive.routed_breakdown {
        println!(
            "      → {:<12} {:4} solves, mean quality {:.4}, {} missed",
            backend,
            count,
            ratio_sum / *count as f64,
            missed,
        );
    }
    for arm in &fixed {
        print_arm(arm);
    }

    let mut beats = Vec::new();
    for arm in &fixed {
        let axes = winning_axes(&adaptive, arm);
        println!("  adaptive beats {:<12} on: {}", arm.name, axes.join(", "));
        beats.push((arm.name, axes));
    }

    let arm_json = |arm: &Arm| {
        JsonObject::new()
            .str("name", arm.name)
            .uint("completed", arm.completed)
            .num("p99_ms", arm.p99.as_secs_f64() * 1e3, 3)
            .num("mean_ms", arm.mean.as_secs_f64() * 1e3, 3)
            .num("deadline_miss_rate", arm.miss_rate, 4)
            .num("mean_quality", arm.mean_quality, 5)
            .num("exploration_share", arm.exploration_share, 4)
            .raw("snapshot", &arm.snapshot.to_json())
    };
    let mix = size_mix();
    let artifact = JsonObject::new()
        .str("bench", "router")
        .bool("smoke", scale.smoke)
        .uint("workers", scale.workers as u64)
        .object(
            "workload",
            JsonObject::new()
                .str("scenario", "drilling")
                .uint("requests", scale.requests as u64)
                .uint("warmup_requests", scale.warmup as u64)
                .uint("routes", ROUTES as u64)
                .num("zipf_exponent", ZIPF_EXPONENT, 2)
                .num("deadline_ms", DEADLINE.as_secs_f64() * 1e3, 1)
                .num("interactive_fraction", 0.5, 2)
                .str(
                    "size_mix",
                    &format!(
                        "small {}..={} / medium {}..={} / large {}..={} @ {:?}",
                        mix.small.0,
                        mix.small.1,
                        mix.medium.0,
                        mix.medium.1,
                        mix.large.0,
                        mix.large.1,
                        mix.weights,
                    ),
                ),
        )
        .object("adaptive", arm_json(&adaptive))
        .array("fixed", JsonArray::from_objects(fixed.iter().map(arm_json)))
        .object(
            "adaptive_beats",
            beats
                .into_iter()
                .fold(JsonObject::new(), |object, (name, axes)| {
                    object.str(name, &axes.join(","))
                }),
        )
        .object(
            "bit_identity",
            JsonObject::new()
                .bool("routed_solves_match_direct_invocation", true)
                .uint("checked_per_arm", scale.identity_checks as u64),
        );
    let path = taxi_bench::artifact_path("BENCH_router.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_router.json");
    println!("wrote {}", path.display());
    // Asserted after the artifact lands so a failing claim still leaves the
    // evidence on disk (and as a CI artifact).
    for arm in &fixed {
        assert!(
            !winning_axes(&adaptive, arm).is_empty(),
            "adaptive routing must beat {} on at least one axis",
            arm.name
        );
    }
}
