//! Observability harness: quantifies what the always-on history scraper and
//! SLO engine cost, and proves the burn-rate alerts do their one job, emitting
//! `BENCH_obs.json` (a CI artifact alongside the other `BENCH_*.json` files).
//!
//! Three arms:
//!
//! * **Scraper overhead** — the same closed-loop workload replayed through
//!   identical fleets, one with observability reduced to the reconciler's own
//!   samples (no scraper, no SLO rules), one with the default background
//!   scraper plus a full SLO rule set. The acceptance bar: the median paired
//!   end-to-end overhead is **under 1%** (enforced at full scale only; smoke
//!   runs are too short to time).
//! * **Storm** — a deadline-miss storm drives the deadline SLO's fast and
//!   slow windows over the fire threshold. The acceptance bar: the alert
//!   fires within a bounded number of scrape ticks, and clears (with
//!   hysteresis) once the storm ends and calm traffic ages it out.
//! * **Healthy** — the same rule set over clean traffic. The acceptance bar:
//!   zero alerts fire for the whole run.
//!
//! Run with `cargo run --release --example obs_bench`; set `TAXI_OBS_SMOKE=1`
//! (CI) for a fast smoke-scale run.

use std::time::{Duration, Instant};

use taxi_bench::json::{JsonArray, JsonObject, JsonValue};
use taxi_dispatch::{AdmissionPolicy, DispatchConfig, DispatchRequest};
use taxi_fleet::{Fleet, FleetConfig, ObsConfig, RoutingPolicy, SloSpec};
use taxi_tsplib::generator::random_uniform_instance;

struct Scale {
    smoke: bool,
    shards: usize,
    requests: usize,
    repeats: usize,
    storm_requests: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_OBS_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                shards: 2,
                requests: 120,
                repeats: 3,
                storm_requests: 30,
            }
        } else {
            Self {
                smoke,
                shards: 3,
                requests: 900,
                repeats: 7,
                storm_requests: 60,
            }
        }
    }
}

/// The full SLO rule set used by the on-arm and the alert arms.
fn slos() -> Vec<SloSpec> {
    vec![
        SloSpec::availability("availability", 0.999),
        SloSpec::deadline_hits("deadline", 0.95)
            .with_windows(Duration::from_millis(200), Duration::from_millis(800))
            .with_burn(2.0, 1.0)
            .with_clear_after(3)
            .with_min_events(10),
        SloSpec::latency_below("latency-p", Duration::from_millis(262), 0.95),
    ]
}

fn fleet(scale: &Scale, obs: ObsConfig) -> Fleet {
    Fleet::start(
        FleetConfig::new()
            .with_shards(scale.shards)
            .with_shard_config(
                DispatchConfig::new()
                    .with_workers(1)
                    .with_queue_capacity(128)
                    .with_admission(AdmissionPolicy::Block),
            )
            .with_routing(RoutingPolicy::FingerprintAffinity)
            .with_reconcile_interval(Duration::from_millis(5))
            .with_obs(obs),
    )
}

/// One closed-loop pass: submit every request, wait for each solution.
fn run_workload(fleet: &Fleet, scale: &Scale, seed_base: u64) -> Duration {
    let start = Instant::now();
    let mut pending = Vec::with_capacity(8);
    for i in 0..scale.requests as u64 {
        let instance = random_uniform_instance(&format!("obs{i}"), 24, seed_base + i);
        pending.push(
            fleet
                .submit(DispatchRequest::new(instance))
                .expect("admitted"),
        );
        // Keep a small closed loop: bounded in-flight work, like a latency-
        // sensitive client pool.
        if pending.len() >= 8 {
            for ticket in pending.drain(..) {
                assert!(ticket.wait().solved().is_some(), "workload solves");
            }
        }
    }
    for ticket in pending {
        assert!(ticket.wait().solved().is_some(), "workload solves");
    }
    start.elapsed()
}

/// Overhead arm: paired off/on runs, median paired ratio.
fn overhead_arm(scale: &Scale) -> (JsonObject, f64) {
    let mut off = Vec::with_capacity(scale.repeats);
    let mut on = Vec::with_capacity(scale.repeats);
    let mut scraped_samples = 0u64;
    let run_off = |repeat: u64, out: &mut Vec<Duration>| {
        // Off: no background scraper, no SLO rules — the reconciler's own
        // per-pass sample is the baseline everyone pays.
        let baseline = fleet(scale, ObsConfig::new().without_scraper());
        out.push(run_workload(&baseline, scale, 10_000 + repeat));
        baseline.shutdown();
    };
    let run_on = |repeat: u64, out: &mut Vec<Duration>, scraped: &mut u64| {
        // On: the shipping default (50ms background scraper) plus the full
        // rule set — the configuration the <1% claim is made for.
        let observed = fleet(scale, ObsConfig::new().with_slos(slos()));
        out.push(run_workload(&observed, scale, 10_000 + repeat));
        *scraped = (*scraped).max(observed.history().recorded());
        observed.shutdown();
    };
    for repeat in 0..scale.repeats as u64 {
        // Alternate which arm runs first: anything that slows the second run
        // of a pair (frequency scaling, allocator state) cancels out of the
        // median instead of masquerading as scraper overhead.
        if repeat % 2 == 0 {
            run_off(repeat, &mut off);
            run_on(repeat, &mut on, &mut scraped_samples);
        } else {
            run_on(repeat, &mut on, &mut scraped_samples);
            run_off(repeat, &mut off);
        }
    }
    // Minimum-of-repeats estimator: ambient interference (frequency scaling,
    // other tenants) only ever *inflates* a run, so each arm's minimum is its
    // cleanest observation — the paired-median estimator drowns a 1% effect
    // in multi-percent run-to-run noise on shared hardware.
    let min_secs = |durations: &[Duration]| {
        durations
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::INFINITY, f64::min)
    };
    let ratio = min_secs(&on) / min_secs(&off);
    let overhead = ratio - 1.0;
    println!(
        "overhead arm: min-of-{} ratio {ratio:.4} ({:+.2}% end-to-end, {} samples scraped)",
        scale.repeats,
        overhead * 100.0,
        scraped_samples,
    );
    let times = |durations: &[Duration]| {
        let mut array = JsonArray::new();
        for duration in durations {
            array = array.push(JsonValue::Float {
                value: duration.as_secs_f64(),
                decimals: 6,
            });
        }
        array
    };
    let object = JsonObject::new()
        .array("off_secs", times(&off))
        .array("on_secs", times(&on))
        .num("min_ratio", ratio, 6)
        .num("end_to_end_overhead_pct", overhead * 100.0, 3)
        .uint("scraped_samples", scraped_samples)
        .bool("gate_under_1pct", overhead < 0.01)
        .bool("gate_enforced", !scale.smoke);
    (object, overhead)
}

/// Storm arm: deadline-miss storm must fire the deadline SLO within a bounded
/// number of scrape ticks, then clear with hysteresis under calm traffic.
fn storm_arm(scale: &Scale) -> (JsonObject, u64, bool) {
    let fleet = fleet(scale, ObsConfig::new().without_scraper().with_slos(slos()));
    // Baseline traffic so the windows hold real events before the storm.
    for i in 0..scale.storm_requests as u64 {
        let instance = random_uniform_instance(&format!("pre{i}"), 20, 40_000 + i);
        assert!(fleet
            .submit(DispatchRequest::new(instance))
            .expect("admitted")
            .wait()
            .solved()
            .is_some());
        fleet.scrape_now();
    }
    assert_eq!(fleet.snapshot().firing_alerts(), 0, "calm baseline");

    // The storm: every completion misses its (impossible) deadline. Ticks are
    // explicit scrape_now calls, so "fires within N ticks" is deterministic
    // in tick count rather than wall-clock.
    let tick_limit = (scale.storm_requests * 4) as u64;
    let mut ticks_to_fire = None;
    let mut tick = 0u64;
    'storm: while tick < tick_limit {
        for i in 0..scale.storm_requests as u64 {
            let instance =
                random_uniform_instance(&format!("storm{tick}-{i}"), 20, 50_000 + tick * 1_000 + i);
            let request = DispatchRequest::new(instance).with_deadline(Duration::from_nanos(1));
            assert!(fleet
                .submit(request)
                .expect("admitted")
                .wait()
                .solved()
                .is_some());
            tick += 1;
            fleet.scrape_now();
            if fleet.snapshot().firing_alerts() > 0 {
                ticks_to_fire = Some(tick);
                break 'storm;
            }
        }
    }
    let fired_in = ticks_to_fire.unwrap_or(u64::MAX);
    println!("storm arm: deadline alert fired after {fired_in} scrape ticks (limit {tick_limit})");
    let firing_names: Vec<String> = fleet
        .slo_statuses()
        .iter()
        .filter(|s| s.state == taxi_fleet::AlertState::Firing)
        .map(|s| s.name.clone())
        .collect();

    // Calm traffic until the alert clears (hysteresis: several consecutive
    // clean evaluations once the storm has aged out of both windows).
    let clear_deadline = Instant::now() + Duration::from_secs(20);
    let mut cleared = false;
    let mut calm = 0u64;
    while Instant::now() < clear_deadline {
        let instance = random_uniform_instance(&format!("calm{calm}"), 20, 70_000 + calm);
        assert!(fleet
            .submit(DispatchRequest::new(instance))
            .expect("admitted")
            .wait()
            .solved()
            .is_some());
        calm += 1;
        fleet.scrape_now();
        if fleet.snapshot().firing_alerts() == 0 {
            cleared = true;
            break;
        }
    }
    println!("storm arm: cleared={cleared} after {calm} calm requests");
    println!("--- dashboard after storm ---");
    print!("{}", fleet.dashboard());
    println!("--- end dashboard ---");
    fleet.shutdown();

    let object = JsonObject::new()
        .uint("tick_limit", tick_limit)
        .uint("ticks_to_fire", fired_in)
        .bool("fired_within_limit", ticks_to_fire.is_some())
        .array(
            "fired_rules",
            firing_names.iter().fold(JsonArray::new(), |array, name| {
                array.push(JsonValue::Str(name.clone()))
            }),
        )
        .uint("calm_requests_to_clear", calm)
        .bool("cleared", cleared);
    (object, fired_in, cleared)
}

/// Healthy arm: the same rules over clean traffic never fire.
fn healthy_arm(scale: &Scale) -> (JsonObject, usize) {
    let fleet = fleet(scale, ObsConfig::new().without_scraper().with_slos(slos()));
    let mut max_firing = 0usize;
    for i in 0..scale.storm_requests as u64 {
        let instance = random_uniform_instance(&format!("healthy{i}"), 20, 90_000 + i);
        assert!(fleet
            .submit(DispatchRequest::new(instance))
            .expect("admitted")
            .wait()
            .solved()
            .is_some());
        fleet.scrape_now();
        max_firing = max_firing.max(fleet.snapshot().firing_alerts());
    }
    let history_json = fleet.history_json();
    let parsed = taxi_bench::json::parse(&history_json).expect("history_json parses");
    let recorded = parsed.get("recorded").and_then(|v| v.as_u64()).unwrap_or(0);
    println!("healthy arm: max firing {max_firing}, {recorded} history samples dumped");
    fleet.shutdown();
    let object = JsonObject::new()
        .uint("requests", scale.storm_requests as u64)
        .uint("max_firing", max_firing as u64)
        .uint("history_samples_dumped", recorded)
        .bool("alert_free", max_firing == 0);
    (object, max_firing)
}

fn main() {
    let scale = Scale::detect();
    println!(
        "obs bench: smoke={} shards={} requests={} repeats={}",
        scale.smoke, scale.shards, scale.requests, scale.repeats
    );

    let (overhead_json, overhead) = overhead_arm(&scale);
    let (storm_json, fired_in, cleared) = storm_arm(&scale);
    let (healthy_json, max_firing) = healthy_arm(&scale);

    let artifact = JsonObject::new()
        .str("bench", "obs")
        .bool("smoke", scale.smoke)
        .uint("shards", scale.shards as u64)
        .uint("requests_per_repeat", scale.requests as u64)
        .uint("repeats", scale.repeats as u64)
        .object("overhead", overhead_json)
        .object("storm", storm_json)
        .object("healthy", healthy_json);
    let path = taxi_bench::artifact_path("BENCH_obs.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());

    // Gates — asserted after the artifact lands so a failing claim still
    // leaves the evidence on disk (and as a CI artifact).
    assert!(
        fired_in != u64::MAX,
        "storm arm: the deadline alert never fired"
    );
    assert!(
        cleared,
        "storm arm: the alert never cleared under calm traffic"
    );
    assert_eq!(
        max_firing, 0,
        "healthy arm: an alert fired on clean traffic"
    );
    if !scale.smoke {
        assert!(
            overhead < 0.01,
            "scraper overhead {:.3}% breaches the 1% gate",
            overhead * 100.0
        );
    }
    println!("obs bench: all gates passed");
}
