//! Quickstart: solve one synthetic TSP end to end with TAXI and print the result.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taxi::{TaxiConfig, TaxiError, TaxiSolver};
use taxi_tsplib::generator::clustered_instance;

fn main() -> Result<(), TaxiError> {
    // A 400-city synthetic instance with clear cluster structure, the regime where
    // hierarchical clustering shines.
    let instance = clustered_instance("quickstart400", 400, 16, 42);

    // The paper's default configuration: maximum cluster size 12, 4-bit distance
    // weights, Ward agglomerative clustering, realistic device non-idealities.
    let config = TaxiConfig::new().with_seed(42);
    let solver = TaxiSolver::new(config);
    let solution = solver.solve(&instance)?;

    println!(
        "instance        : {} ({} cities)",
        instance.name(),
        instance.dimension()
    );
    println!("tour length     : {:.1}", solution.length);
    println!("hierarchy levels: {}", solution.levels);
    println!("sub-problems    : {}", solution.subproblems);
    println!();
    println!("latency breakdown (host-measured + hardware-modelled):");
    println!(
        "  clustering : {:>10.3} ms",
        solution.latency.clustering_seconds * 1e3
    );
    println!(
        "  fixing     : {:>10.3} ms",
        solution.latency.fixing_seconds * 1e3
    );
    println!(
        "  ising      : {:>10.3} ms",
        solution.latency.ising_seconds * 1e3
    );
    println!(
        "  transfer   : {:>10.3} ms",
        solution.latency.transfer_seconds * 1e3
    );
    println!(
        "  mapping    : {:>10.3} ms",
        solution.latency.mapping_seconds * 1e3
    );
    println!(
        "  total      : {:>10.3} ms",
        solution.latency.total_seconds() * 1e3
    );
    println!();
    println!("energy breakdown (hardware-modelled):");
    println!(
        "  ising      : {:>10.3} µJ",
        solution.energy.ising_joules * 1e6
    );
    println!(
        "  transfer   : {:>10.3} µJ",
        solution.energy.transfer_joules * 1e6
    );
    println!(
        "  mapping    : {:>10.3} µJ",
        solution.energy.mapping_joules * 1e6
    );
    println!(
        "  total      : {:>10.3} µJ",
        solution.energy.total_joules() * 1e6
    );

    // Compare against a classical heuristic reference.
    let matrix = instance.full_distance_matrix();
    let reference = taxi_baselines::reference_tour(&matrix);
    let reference_length = taxi_baselines::tour_length(&matrix, &reference);
    println!();
    println!("reference tour (NN + 2-opt): {:.1}", reference_length);
    println!(
        "ratio to reference         : {:.3}",
        solution.length / reference_length
    );
    Ok(())
}
