//! Domain scenario: PCB / programmed-logic-array drill-path optimisation.
//!
//! The largest TSPLIB instances the paper targets (`pla33810`, `pla85900`) are
//! programmed-logic-array drilling problems: tens of thousands of holes on a near-regular
//! grid whose drill head path should be as short as possible. This example builds a
//! drilling workload, solves it with TAXI, and shows how the latency breakdown shifts
//! from Ising processing to clustering as the board grows — the Fig. 6b effect.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pcb_drilling
//! ```

use taxi::{TaxiConfig, TaxiError, TaxiSolver};
use taxi_tsplib::generator::grid_drilling_instance;

fn main() -> Result<(), TaxiError> {
    println!("PCB drill-path optimisation with TAXI (cluster size 12, 4-bit weights)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>11} {:>11} {:>11} {:>11}",
        "holes", "path length", "total s", "cluster%", "fixing%", "ising%", "transfer%"
    );
    for &holes in &[300usize, 800, 1500, 3000] {
        let board = grid_drilling_instance(&format!("board{holes}"), holes, 77);
        let config = TaxiConfig::new().with_seed(5);
        let solution = TaxiSolver::new(config).solve(&board)?;
        let fractions = solution.latency.fractions();
        println!(
            "{:>10} {:>12.0} {:>12.4} {:>10.1}% {:>10.1}% {:>10.1}% {:>10.1}%",
            holes,
            solution.length,
            solution.latency.total_seconds(),
            fractions[0] * 100.0,
            fractions[1] * 100.0,
            fractions[2] * 100.0,
            (fractions[3] + fractions[4]) * 100.0,
        );
    }
    println!();
    println!("As the board grows, host-side clustering and endpoint fixing dominate the");
    println!("total latency while the in-macro Ising time stays small — the same breakdown");
    println!("the paper reports in Fig. 6b.");
    Ok(())
}
