//! Umbrella crate for the TAXI reproduction workspace.
//!
//! `taxi-suite` re-exports every crate in the workspace so the runnable examples and the
//! cross-crate integration tests under `tests/` can reach the whole stack through a single
//! dependency. Library users should normally depend on [`taxi`] (the core crate) directly.
//!
//! # Example
//!
//! ```
//! use taxi_suite::tsplib::generator::random_uniform_instance;
//!
//! let instance = random_uniform_instance("demo16", 16, 42);
//! assert_eq!(instance.dimension(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use taxi as core;
pub use taxi_arch as arch;
pub use taxi_baselines as baselines;
pub use taxi_bench as bench;
pub use taxi_cache as cache;
pub use taxi_cluster as cluster;
pub use taxi_device as device;
pub use taxi_dispatch as dispatch;
pub use taxi_fleet as fleet;
pub use taxi_ising as ising;
pub use taxi_tsplib as tsplib;
pub use taxi_xbar as xbar;
